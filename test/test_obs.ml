(* Telemetry layer: the JSON codec, the metrics registry (bucketing in
   particular), sink plumbing, catapult well-formedness, and the headline
   guarantee — a fixed init + schedule + seed produces a byte-identical
   trace, because timestamps come from a logical clock. *)

module J = Obs.Json
module M = Obs.Metrics
module S = Obs.Sink

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd\te");
        ("i", J.Int (-42));
        ("f", J.Float 0.125);
        ("n", J.Null);
        ("b", J.Bool true);
        ("l", J.List [ J.Int 1; J.Obj []; J.List [] ]);
      ]
  in
  let text = J.to_string v in
  match J.of_string text with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok v' ->
      Alcotest.(check string) "canonical reprint" text (J.to_string v');
      Alcotest.(check bool) "structural equality" true (v = v')

let test_json_errors () =
  let bad s =
    match J.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parser accepted %S" s
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1 \"b\":2}";
  bad "\"unterminated";
  bad "1 2";
  match J.of_string "  {\"a\": [1, 2.5, null]}  " with
  | Ok (J.Obj [ ("a", J.List [ J.Int 1; J.Float 2.5; J.Null ]) ]) -> ()
  | Ok v -> Alcotest.failf "misparsed: %s" (J.to_string v)
  | Error e -> Alcotest.failf "rejected valid JSON: %s" e

(* Error diagnostics are part of the CLI contract: `trace summary` and
   `report` surface them verbatim, so the position prefix and the
   message shape are pinned here. *)
let test_json_error_positions () =
  let expect input message =
    match J.of_string input with
    | Ok v ->
        Alcotest.failf "parser accepted %S as %s" input (J.to_string v)
    | Error e ->
        Alcotest.(check string) (Printf.sprintf "error for %S" input)
          message e
  in
  expect "[1,]" "at 3: bad number \"\"";
  expect "\"\\q\"" "at 2: bad escape 'q'";
  (* Truncated objects and arrays report the delimiter they ran out of
     input waiting for, at the position where it should have been. *)
  expect "{\"a\": 1" "at 7: expected '}'";
  expect "{\"a\"" "at 4: expected ':'";
  expect "[1, 2" "at 5: expected ']'";
  expect "\"unterminated" "at 13: unterminated string";
  expect "truexx" "at 4: trailing garbage"

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let test_registry () =
  M.reset ();
  let c = M.counter "test.ops" in
  let c' = M.counter "test.ops" in
  M.inc c;
  M.add c' 4;
  Alcotest.(check int) "registration is idempotent" 5 (M.counter_value c);
  let g = M.gauge "test.depth" in
  M.set g 3;
  M.set_max g 2;
  Alcotest.(check int) "set_max keeps high-watermark" 3 (M.gauge_value g);
  M.set_max g 9;
  Alcotest.(check int) "set_max advances" 9 (M.gauge_value g);
  (match M.gauge "test.ops" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise");
  (match M.histogram ~bounds:[| 1; 2 |] "test.hist_bounds" with
  | h -> (
      ignore (M.observe h 1);
      match M.histogram ~bounds:[| 1; 3 |] "test.hist_bounds" with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bounds mismatch must raise"));
  (* The snapshot is parseable JSON and contains the registered names. *)
  (match J.of_string (M.snapshot_string ()) with
  | Error e -> Alcotest.failf "snapshot unparseable: %s" e
  | Ok snap -> (
      match J.member "counters" snap with
      | Some (J.Obj fields) ->
          Alcotest.(check bool)
            "counter in snapshot" true
            (List.mem_assoc "test.ops" fields)
      | _ -> Alcotest.fail "snapshot has no counters object"));
  M.reset ();
  Alcotest.(check int) "reset zeroes counters" 0 (M.counter_value c);
  Alcotest.(check int) "reset zeroes gauges" 0 (M.gauge_value g)

let test_histogram_bucketing () =
  M.reset ();
  let h = M.histogram ~bounds:[| 1; 2; 4 |] "test.bucketing" in
  List.iter (M.observe h) [ 0; 1; 2; 3; 4; 5; 100 ];
  Alcotest.(check int) "observation count" 7 (M.observations h);
  (* v counts in the first bucket with v <= bound; above the last bound,
     the overflow bucket: 0,1 -> le_1; 2 -> le_2; 3,4 -> le_4; 5,100 -> inf *)
  Alcotest.(check (array int))
    "bucket assignment" [| 2; 1; 2; 2 |] (M.bucket_counts h);
  match J.of_string (M.snapshot_string ()) with
  | Error e -> Alcotest.failf "snapshot unparseable: %s" e
  | Ok snap -> (
      let open J in
      match
        Option.bind (member "histograms" snap) (member "test.bucketing")
      with
      | None -> Alcotest.fail "histogram missing from snapshot"
      | Some hj ->
          Alcotest.(check (option string))
            "sum" (Some "115")
            (Option.map to_string (member "sum" hj));
          Alcotest.(check (option string))
            "max" (Some "100")
            (Option.map to_string (member "max" hj));
          Alcotest.(check (option string))
            "overflow bucket" (Some "2")
            (Option.map to_string
               (Option.bind (member "buckets" hj) (member "inf"))))

(* Boundary values: an observation equal to a bucket bound lands in that
   bucket (le semantics), zero and negatives fall in the first bucket,
   and the first value past the last bound overflows. *)
let test_histogram_boundary_values () =
  M.reset ();
  let case name value expected =
    let h =
      M.histogram ~bounds:[| 1; 2; 4 |] (Printf.sprintf "test.bound_%s" name)
    in
    M.observe h value;
    Alcotest.(check (array int))
      (Printf.sprintf "%s -> bucket" name)
      expected (M.bucket_counts h)
  in
  case "exact_first" 1 [| 1; 0; 0; 0 |];
  case "exact_mid" 2 [| 0; 1; 0; 0 |];
  case "exact_last" 4 [| 0; 0; 1; 0 |];
  case "zero" 0 [| 1; 0; 0; 0 |];
  case "negative" (-3) [| 1; 0; 0; 0 |];
  case "just_over" 5 [| 0; 0; 0; 1 |]

let test_percentiles () =
  M.reset ();
  let h = M.histogram ~bounds:[| 1; 2; 4 |] "test.percentiles" in
  Alcotest.(check (option int)) "empty histogram" None (M.percentile h 50.);
  for _ = 1 to 50 do M.observe h 1 done;
  for _ = 1 to 40 do M.observe h 2 done;
  for _ = 1 to 10 do M.observe h 100 done;
  (* 50 of 100 observations are <= 1, 90 are <= 2; the last decile sits
     in the overflow bucket, whose only upper bound is the recorded max. *)
  Alcotest.(check (option int)) "p50" (Some 1) (M.percentile h 50.);
  Alcotest.(check (option int)) "p90" (Some 2) (M.percentile h 90.);
  Alcotest.(check (option int)) "p99 hits overflow -> max seen" (Some 100)
    (M.percentile h 99.)

let test_metrics_delta () =
  M.reset ();
  let c = M.counter "test.delta_ops" in
  let g = M.gauge "test.delta_depth" in
  let h = M.histogram ~bounds:[| 1; 2 |] "test.delta_hist" in
  M.add c 3;
  M.set g 7;
  M.observe h 1;
  let before = M.snapshot () in
  M.add c 5;
  M.set g 2;
  M.observe h 2;
  M.observe h 2;
  let after = M.snapshot () in
  let d = M.delta ~before ~after in
  let counter_of j name =
    Option.bind (J.member "counters" j) (J.member name)
  in
  Alcotest.(check (option string))
    "counter difference" (Some "5")
    (Option.map J.to_string (counter_of d "test.delta_ops"));
  Alcotest.(check (option string))
    "gauge is a point-in-time reading (after wins)" (Some "2")
    (Option.map J.to_string
       (Option.bind (J.member "gauges" d) (J.member "test.delta_depth")));
  let hist = Option.bind (J.member "histograms" d) (J.member "test.delta_hist") in
  Alcotest.(check (option string))
    "histogram count difference" (Some "2")
    (Option.map J.to_string (Option.bind hist (J.member "count")));
  Alcotest.(check (option string))
    "histogram sum difference" (Some "4")
    (Option.map J.to_string (Option.bind hist (J.member "sum")))

let test_empty_histogram_max_is_null () =
  M.reset ();
  let h = M.histogram ~bounds:[| 1 |] "test.empty_hist" in
  ignore (M.observations h);
  match J.of_string (M.snapshot_string ()) with
  | Error e -> Alcotest.failf "snapshot unparseable: %s" e
  | Ok snap ->
      let open J in
      Alcotest.(check (option string))
        "max of empty histogram" (Some "null")
        (Option.map to_string
           (Option.bind
              (Option.bind (member "histograms" snap)
                 (member "test.empty_hist"))
              (member "max")))

(* ------------------------------------------------------------------ *)
(* Sinks and the logical clock                                         *)

let test_logical_clock_gating () =
  (* The clock ticks exactly when an event is constructed, and with the
     flight recorder armed (the default) every emission constructs one.
     Disarm it to observe pure sink gating. *)
  Obs.Recorder.armed := false;
  Fun.protect ~finally:(fun () -> Obs.Recorder.armed := true) @@ fun () ->
  let sink, events = S.memory () in
  Obs.Span.reset ();
  Obs.Span.instant "dropped-before";
  (* nil sink + disarmed recorder: nothing constructed, no tick *)
  S.with_sink sink (fun () ->
      Obs.Span.instant "a";
      Obs.Span.begin_ "b";
      Obs.Span.end_ "b");
  Obs.Span.instant "dropped-after";
  let ts = List.map (fun (e : S.event) -> e.ts) (events ()) in
  Alcotest.(check (list int))
    "disabled emissions do not tick the clock" [ 1; 2; 3 ] ts

(* The recorder keeps the last [capacity] events per domain, untraced
   runs included, and dumps them as JSONL with a "dom" field. *)
let test_recorder_ring () =
  Obs.Recorder.clear ();
  Obs.Span.reset ();
  let extra = 10 in
  (* No sink installed: these are untraced, yet the armed recorder sees
     each constructed event (which is also why the clock advances). *)
  for i = 1 to Obs.Recorder.capacity + extra do
    Obs.Span.instant ~cat:"app" ~args:[ ("i", J.Int i) ] "tick"
  done;
  let evs = List.map snd (Obs.Recorder.events ()) in
  Alcotest.(check int)
    "ring holds exactly capacity events" Obs.Recorder.capacity
    (List.length evs);
  (match evs with
  | first :: _ ->
      Alcotest.(check (option string))
        "oldest surviving event is capacity back from the newest"
        (Some (string_of_int (extra + 1)))
        (Option.map J.to_string (List.assoc_opt "i" first.S.args))
  | [] -> Alcotest.fail "ring is empty");
  let dir = Filename.get_temp_dir_name () in
  (match Obs.Recorder.dump ~dir ~reason:"test" () with
  | None -> Alcotest.fail "dump returned no path"
  | Some path ->
      Alcotest.(check string) "dump file name"
        (Filename.concat dir "flight-test.jsonl") path;
      let lines =
        In_channel.with_open_text path In_channel.input_lines
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "one line per recorded event"
        Obs.Recorder.capacity (List.length lines);
      List.iter
        (fun line ->
          match J.of_string line with
          | Error e -> Alcotest.failf "unparseable dump line: %s" e
          | Ok j -> (
              match J.member "dom" j with
              | Some (J.Int _) -> ()
              | _ -> Alcotest.failf "dump line lacks a dom field: %s" line))
        lines;
      Sys.remove path);
  Obs.Recorder.clear ();
  Alcotest.(check int) "clear empties the rings" 0
    (List.length (Obs.Recorder.events ()))

(* Worker-domain events surface on the main domain: each parallel unit's
   captured events replay after join in unit-index order, re-stamped by
   the main domain's clock — the trace is identical at any --jobs. *)
let test_worker_event_drain () =
  let sink, events = S.memory () in
  Obs.Span.reset ();
  S.with_sink sink (fun () ->
      let units = [| 0; 1; 2; 3; 4; 5 |] in
      let out =
        Sched.Par.run_units ~jobs:2 ~units (fun u ->
            Obs.Span.instant ~cat:"sched" ~args:[ ("unit", J.Int u) ] "unit";
            u * 10)
      in
      Alcotest.(check (array int))
        "results in unit order" [| 0; 10; 20; 30; 40; 50 |] out);
  let evs =
    List.filter (fun (e : S.event) -> e.S.name = "unit") (events ())
  in
  let units_seen =
    List.filter_map
      (fun (e : S.event) ->
        match List.assoc_opt "unit" e.S.args with
        | Some (J.Int u) -> Some u
        | _ -> None)
      evs
  in
  Alcotest.(check (list int))
    "worker events drain in unit-index order" [ 0; 1; 2; 3; 4; 5 ]
    units_seen;
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool)
    "replayed stamps are strictly increasing main-domain ticks" true
    (increasing (List.map (fun (e : S.event) -> e.S.ts) evs))

let test_span_closes_on_exception () =
  let sink, events = S.memory () in
  Obs.Span.reset ();
  (match
     S.with_sink sink (fun () ->
         Obs.Span.span "work" (fun () -> failwith "boom"))
   with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected the exception to escape");
  match events () with
  | [ b; e ] ->
      Alcotest.(check bool) "begin first" true (b.S.kind = S.Begin);
      Alcotest.(check bool) "end second" true (e.S.kind = S.End);
      Alcotest.(check bool)
        "end carries exn arg" true
        (List.mem_assoc "exn" e.S.args)
  | evs -> Alcotest.failf "expected exactly B+E, got %d events"
             (List.length evs)

let test_event_json_roundtrip () =
  let e =
    {
      S.kind = S.Instant;
      name = "deliver";
      cat = "net";
      track = 3;
      ts = 17;
      args = [ ("src", J.Int 1); ("hops", J.Int 4) ];
    }
  in
  match S.event_of_json (S.event_json e) with
  | Some e' -> Alcotest.(check bool) "event roundtrip" true (e = e')
  | None -> Alcotest.fail "event_of_json rejected its own output"

(* ------------------------------------------------------------------ *)
(* End-to-end traces                                                   *)

(* A fixed exploration workload: two straight-line writers, fully
   deterministic given the engine's DFS order. *)
let workload () =
  let straight len : (int, unit, unit) Sched.Program.t =
    let rec go k =
      if k = 0 then Sched.Program.return ()
      else Sched.Program.Write (k, fun () -> go (k - 1))
    in
    go len
  in
  Sched.Scheduler.start
    ~memory:
      (Sched.Memory.create ~n:2 ~budget:Bits.Width.Unbounded
         ~measure:Bits.Width.unbounded ~init:0)
    ~programs:(fun _ -> straight 2)
    ()

let capture_jsonl f =
  let b = Buffer.create 4096 in
  Obs.Span.reset ();
  S.with_sink (S.jsonl (Buffer.add_string b)) f;
  Buffer.contents b

let test_trace_determinism_explore () =
  let run () =
    ignore (Sched.Explore.explore ~init:workload (fun _ -> ()))
  in
  let a = capture_jsonl run and b = capture_jsonl run in
  Alcotest.(check bool) "trace is non-trivial" true (String.length a > 200);
  Alcotest.(check string) "byte-identical across runs" a b

let test_trace_determinism_chaos () =
  let run () =
    ignore
      (Msgpass.Chaos.campaign ~seed:11 ~runs:2 (Msgpass.Chaos.sound ()))
  in
  let a = capture_jsonl run and b = capture_jsonl run in
  Alcotest.(check bool) "trace is non-trivial" true (String.length a > 200);
  Alcotest.(check string) "byte-identical across runs" a b;
  (* Every line is an independently parseable trace event. *)
  String.split_on_char '\n' a
  |> List.filter (fun l -> String.trim l <> "")
  |> List.iter (fun line ->
         match J.of_string line with
         | Error e -> Alcotest.failf "unparseable JSONL line: %s" e
         | Ok j -> (
             match S.event_of_json j with
             | Some _ -> ()
             | None -> Alcotest.failf "line is not a trace event: %s" line))

let test_catapult_well_formed () =
  let b = Buffer.create 4096 in
  Obs.Span.reset ();
  S.with_sink
    (S.catapult (Buffer.add_string b))
    (fun () ->
      ignore
        (Msgpass.Chaos.campaign ~seed:3 ~runs:1 (Msgpass.Chaos.sound ()));
      ignore (Sched.Explore.explore ~init:workload (fun _ -> ())));
  match J.of_string (Buffer.contents b) with
  | Error e -> Alcotest.failf "catapult output unparseable: %s" e
  | Ok (J.List items) ->
      Alcotest.(check bool) "has events" true (List.length items > 10);
      (* Spans must balance per track: every E matches an open B. *)
      let depth = Hashtbl.create 4 in
      List.iter
        (fun item ->
          match S.event_of_json item with
          | None ->
              Alcotest.failf "array element is not a trace event: %s"
                (J.to_string item)
          | Some e -> (
              let d =
                Option.value (Hashtbl.find_opt depth e.S.track) ~default:0
              in
              match e.S.kind with
              | S.Begin -> Hashtbl.replace depth e.track (d + 1)
              | S.End ->
                  if d = 0 then Alcotest.fail "span end without begin";
                  Hashtbl.replace depth e.track (d - 1)
              | S.Instant -> ()))
        items;
      Hashtbl.iter
        (fun track d ->
          if d <> 0 then Alcotest.failf "%d unclosed span(s) on track %d" d track)
        depth
  | Ok _ -> Alcotest.fail "catapult output is not a JSON array"

let test_hot_gating () =
  M.reset ();
  let steps = M.counter "sched.steps" in
  let width = M.histogram ~bounds:[| 1; 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64 |]
      "sched.register_bits"
  in
  M.hot := false;
  ignore (Sched.Explore.explore ~init:workload (fun _ -> ()));
  Alcotest.(check int) "cold: steps untallied" 0 (M.counter_value steps);
  Alcotest.(check int) "cold: widths unobserved" 0 (M.observations width);
  M.hot := true;
  Fun.protect ~finally:(fun () -> M.hot := false) (fun () ->
      ignore (Sched.Explore.explore ~init:workload (fun _ -> ())));
  Alcotest.(check bool)
    "hot: steps tallied" true
    (M.counter_value steps > 0);
  Alcotest.(check bool)
    "hot: widths observed" true
    (M.observations width > 0)

(* Domain-safety: metric cells take atomic updates, so concurrent tallies
   from several domains lose nothing — the exact totals come back. *)
let test_metrics_domain_safe () =
  M.reset ();
  let c = M.counter "par.domains.counter" in
  let g = M.gauge "par.domains.gauge" in
  let h = M.histogram ~bounds:[| 10; 100; 1_000 |] "par.domains.hist" in
  let domains = 4 and per_domain = 25_000 in
  let worker d () =
    for i = 1 to per_domain do
      M.inc c;
      M.set_max g ((d * per_domain) + i);
      M.observe h i
    done
  in
  let spawned = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join spawned;
  Alcotest.(check int) "no lost counter increments" (domains * per_domain)
    (M.counter_value c);
  Alcotest.(check int) "gauge holds the global max" (domains * per_domain)
    (M.gauge_value g);
  Alcotest.(check int) "no lost observations" (domains * per_domain)
    (M.observations h)

let test_explore_metrics_registry () =
  M.reset ();
  let r = Sched.Explore.explore ~init:workload (fun _ -> ()) in
  let counter name =
    M.counter_value (M.counter name)
  in
  Alcotest.(check int)
    "explore.nodes mirrors stats" r.Sched.Explore.stats.Sched.Explore.nodes
    (counter "explore.nodes");
  Alcotest.(check int)
    "explore.terminals mirrors stats"
    r.Sched.Explore.stats.Sched.Explore.terminals
    (counter "explore.terminals");
  Alcotest.(check int)
    "explore.peak_depth mirrors stats"
    r.Sched.Explore.stats.Sched.Explore.peak_depth
    (M.gauge_value (M.gauge "explore.peak_depth"))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "error-positions" `Quick
            test_json_error_positions;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "bucket-boundaries" `Quick
            test_histogram_boundary_values;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "delta" `Quick test_metrics_delta;
          Alcotest.test_case "empty-max" `Quick
            test_empty_histogram_max_is_null;
          Alcotest.test_case "hot-gating" `Quick test_hot_gating;
          Alcotest.test_case "domain-safety" `Quick test_metrics_domain_safe;
          Alcotest.test_case "explore-mirror" `Quick
            test_explore_metrics_registry;
        ] );
      ( "sink",
        [
          Alcotest.test_case "clock-gating" `Quick test_logical_clock_gating;
          Alcotest.test_case "span-exception" `Quick
            test_span_closes_on_exception;
          Alcotest.test_case "event-roundtrip" `Quick
            test_event_json_roundtrip;
          Alcotest.test_case "recorder-ring" `Quick test_recorder_ring;
          Alcotest.test_case "worker-drain" `Quick test_worker_event_drain;
        ] );
      ( "trace",
        [
          Alcotest.test_case "determinism-explore" `Quick
            test_trace_determinism_explore;
          Alcotest.test_case "determinism-chaos" `Quick
            test_trace_determinism_chaos;
          Alcotest.test_case "catapult" `Quick test_catapult_well_formed;
        ] );
    ]
