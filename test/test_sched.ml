(* Tests for lib/sched: memory, scheduler semantics, exhaustive exploration,
   snapshots. *)

module P = Sched.Program
module M = Sched.Memory
module S = Sched.Scheduler
open P.Infix

let make_memory ?(n = 2) ?(budget = Bits.Width.Unbounded) () =
  M.create ~n ~budget ~measure:(fun (v : int) -> Bits.Width.bits_for v)
    ~init:0

let test_memory_basics () =
  let m = make_memory ~n:3 () in
  Alcotest.(check int) "n" 3 (M.n m);
  M.write m ~pid:1 42;
  Alcotest.(check int) "read back" 42 (M.read m 1);
  Alcotest.(check int) "other registers untouched" 0 (M.read m 0);
  Alcotest.(check (array int)) "contents" [| 0; 42; 0 |] (M.contents m);
  Alcotest.(check int) "write count" 1 (M.writes_performed m);
  Alcotest.(check int) "read count" 2 (M.reads_performed m);
  Alcotest.(check int) "max bits = bits of 42" 6 (M.max_bits_written m)

let test_memory_budget () =
  let m = make_memory ~budget:(Bits.Width.Bounded 3) () in
  M.write m ~pid:0 7;
  Alcotest.check_raises "8 needs 4 bits"
    (Bits.Width.Overflow { budget = 3; needed = 4 })
    (fun () -> M.write m ~pid:0 8)

let test_memory_inputs_write_once () =
  let m = make_memory () in
  Alcotest.(check (option string)) "initially empty" None (M.read_input m 0);
  M.write_input m ~pid:0 "x";
  Alcotest.(check (option string)) "written" (Some "x") (M.read_input m 0);
  Alcotest.check_raises "second write rejected"
    (Invalid_argument "Memory.write_input: input register is write-once")
    (fun () -> M.write_input m ~pid:0 "y")

let test_memory_copy_independent () =
  let m = make_memory () in
  M.write m ~pid:0 1;
  let m' = M.copy m in
  M.write m' ~pid:0 2;
  Alcotest.(check int) "original unchanged" 1 (M.read m 0)

(* A tiny ping protocol: write own pid + 1, read the other register. *)
let ping ~me : (int, string, int) P.t =
  let* () = P.write (me + 1) in
  let* seen = P.read (1 - me) in
  P.return seen

let start ?record_trace () =
  S.start ?record_trace ~memory:(make_memory ()) ~programs:(fun pid -> ping ~me:pid) ()

let test_scheduler_step_semantics () =
  let s = start () in
  Alcotest.(check (list int)) "both running" [ 0; 1 ] (S.running s);
  S.step s 0;
  (* p0 wrote *)
  Alcotest.(check int) "p0 write visible" 1 (M.read (S.memory s) 0);
  S.step s 0;
  (* p0 read R1 = 0 and decided *)
  (match S.status s 0 with
  | S.Decided 0 -> ()
  | _ -> Alcotest.fail "p0 should have decided 0");
  S.step s 1;
  S.step s 1;
  (match S.status s 1 with
  | S.Decided 1 -> ()
  | _ -> Alcotest.fail "p1 should have decided 1 (saw p0's write)");
  Alcotest.(check bool) "all halted" true (S.all_halted s);
  Alcotest.(check int) "4 steps total" 4 (S.steps_taken s)

let test_scheduler_crash () =
  let s = start () in
  S.crash s 1;
  Alcotest.(check (list int)) "crashed list" [ 1 ] (S.crashed s);
  Alcotest.check_raises "stepping crashed raises"
    (Invalid_argument "Scheduler.step: process 1 halted") (fun () ->
      S.step s 1);
  S.run_solo s 0;
  Alcotest.(check bool) "solo decided" true (S.all_halted s);
  Alcotest.(check (array (option int))) "solo read 0" [| Some 0; None |]
    (S.decisions s)

let test_scheduler_trace_replay () =
  let s = start ~record_trace:true () in
  S.run_random (Bits.Rng.make 3) s;
  let schedule = Sched.Trace.schedule_of (S.trace s) in
  let s' = start () in
  S.run_schedule s' schedule;
  Alcotest.(check (array (option int))) "replay reproduces decisions"
    (S.decisions s) (S.decisions s')

let test_scheduler_output_continue () =
  (* A process that announces a decision and keeps writing forever. *)
  let rec server i : (int, string, int) P.t =
    P.Output (99, fun () -> let* () = P.write i in server (i + 1))
  in
  let memory = make_memory ~n:1 () in
  let s = S.start ~memory ~programs:(fun _ -> server 0) () in
  Alcotest.(check bool) "output immediately visible" true (S.all_output s);
  Alcotest.(check (array (option int))) "decision" [| Some 99 |]
    (S.decisions s);
  S.step s 0;
  S.step s 0;
  Alcotest.(check bool) "still running" true (S.running s = [ 0 ]);
  S.run_random ~until_outputs:true (Bits.Rng.make 1) s;
  Alcotest.(check bool) "until_outputs halts the driver" true true

(* Explore: the number of complete interleavings of two straight-line
   programs of lengths a and b is C(a+b, a). *)
let test_explore_counts () =
  let straight len : (int, string, unit) P.t =
    let rec go k = if k = 0 then P.return () else
      let* () = P.write k in
      go (k - 1)
    in
    go len
  in
  let choose a b =
    let rec fact n = if n = 0 then 1 else n * fact (n - 1) in
    fact (a + b) / (fact a * fact b)
  in
  List.iter
    (fun (a, b) ->
      let init () =
        S.start ~memory:(make_memory ())
          ~programs:(fun pid -> straight (if pid = 0 then a else b))
          ()
      in
      Alcotest.(check int)
        (Printf.sprintf "C(%d+%d,%d) interleavings" a b a)
        (choose a b)
        (fst (Sched.Explore.count ~init ())))
    [ (1, 1); (2, 2); (3, 2); (4, 4) ]

let test_explore_find () =
  let init () = start () in
  (* Find an execution where p1 saw p0's write. *)
  let found, _ =
    Sched.Explore.find ~init (fun s ->
        match (S.decisions s).(1) with Some 1 -> true | _ -> false)
  in
  Alcotest.(check bool) "found" true (found <> None);
  let not_found, complete =
    Sched.Explore.find ~init (fun s ->
        match (S.decisions s).(1) with Some 7 -> true | _ -> false)
  in
  Alcotest.(check bool) "absent outcome not found" true (not_found = None);
  Alcotest.(check bool) "absence is conclusive (complete search)" true
    (complete = Sched.Explore.Complete)

let test_explore_crashes_include_solo () =
  (* With 1 crash allowed, solo executions of both processes appear. *)
  let solo_outcomes = ref [] in
  let (_ : Sched.Explore.outcome) =
    Sched.Explore.interleavings_with_crashes ~max_crashes:1
      ~init:(fun () -> start ())
      (fun s ->
        match (S.decisions s).(0), (S.decisions s).(1) with
        | Some v, None -> solo_outcomes := (`P0, v) :: !solo_outcomes
        | None, Some v -> solo_outcomes := (`P1, v) :: !solo_outcomes
        | _ -> ())
  in
  Alcotest.(check bool) "p0 solo reads 0" true
    (List.mem (`P0, 0) !solo_outcomes);
  Alcotest.(check bool) "p1 solo reads 0" true
    (List.mem (`P1, 0) !solo_outcomes)

(* Undo journal: stepping and crashing, then rewinding, restores programs,
   statuses, outputs, memory contents, and every statistics counter. *)
let journal_snap s =
  ( S.decisions s,
    M.contents (S.memory s),
    S.running s,
    S.crashed s,
    S.steps_taken s,
    (S.steps_of s 0, S.steps_of s 1),
    ( M.reads_performed (S.memory s),
      M.writes_performed (S.memory s),
      M.max_bits_written (S.memory s) ) )

let test_undo_rollback_across_crashes () =
  let s = start ~record_trace:true () in
  S.enable_journal s;
  let root = journal_snap s in
  let m0 = S.journal_mark s in
  S.step s 0;
  (* p0 wrote 1 *)
  let after_write = journal_snap s in
  let m1 = S.journal_mark s in
  (* Branch A: crash p1, run p0 to decision. *)
  S.crash s 1;
  S.step s 0;
  Alcotest.(check (list int)) "branch A: p1 crashed" [ 1 ] (S.crashed s);
  Alcotest.(check (array (option int))) "branch A: p0 decided solo"
    [| Some 0; None |] (S.decisions s);
  S.undo_to s m1;
  Alcotest.(check bool) "undo to mid-point restores everything" true
    (journal_snap s = after_write);
  (* Branch B from the same mid-point: p1 runs and sees p0's write. *)
  S.step s 1;
  S.step s 1;
  (match S.status s 1 with
  | S.Decided 1 -> ()
  | _ -> Alcotest.fail "branch B: p1 should have seen p0's write");
  S.undo_to s m0;
  Alcotest.(check bool) "undo to root restores everything" true
    (journal_snap s = root);
  Alcotest.(check int) "trace rewound too" 0 (List.length (S.trace s));
  (* The rewound state is still live: a full run completes normally. *)
  S.run_round_robin s;
  Alcotest.(check bool) "rewound state replays" true (S.all_halted s)

let test_undo_rollback_write_over () =
  (* Overwrites and width stats rewind: write a wide value, undo, and the
     memory reports the narrow past, not the wide future. *)
  let m = make_memory () in
  let s =
    S.start ~memory:m
      ~programs:(fun _ ->
        let* () = P.write 1 in
        let* () = P.write 255 in
        P.return ())
      ()
  in
  S.enable_journal s;
  S.step s 0;
  let mark = S.journal_mark s in
  S.step s 0;
  Alcotest.(check int) "wide value written" 255 (M.read m 0);
  Alcotest.(check int) "8 bits seen" 8 (M.max_bits_written m);
  S.undo_to s mark;
  Alcotest.(check int) "register restored" 1 (M.peek m 0);
  Alcotest.(check int) "width stat restored" 1 (M.max_bits_written m);
  Alcotest.(check int) "read counter restored" 1 (M.reads_performed m)

(* The acceptance workload: 3 straight-line writers, 4 steps each. The
   engine must (a) reach exactly the naive walker's terminal states and
   (b) expand >= 5x fewer nodes. *)
let writers_3x4_init () =
  let straight len : (int, string, unit) P.t =
    let rec go k =
      if k = 0 then P.return ()
      else
        let* () = P.write k in
        go (k - 1)
    in
    go len
  in
  S.start ~memory:(make_memory ~n:3 ()) ~programs:(fun _ -> straight 4) ()

let terminal_signature s =
  ( Array.to_list (S.decisions s),
    Array.to_list (M.contents (S.memory s)),
    S.crashed s )

let test_explore_reductions_5x () =
  let init = writers_3x4_init in
  let naive = ref [] in
  Sched.Explore.interleavings_naive ~init (fun s ->
      naive := terminal_signature s :: !naive);
  Alcotest.(check int) "naive schedule count: 12!/(4!)^3" 34650
    (List.length !naive);
  let raw =
    (Sched.Explore.explore ~dedup:false ~por:false ~init (fun _ -> ()))
      .Sched.Explore.stats
  in
  Alcotest.(check int) "raw engine = naive tree" 34650
    raw.Sched.Explore.terminals;
  let opt_states = ref [] in
  let opt =
    (Sched.Explore.explore ~init (fun s ->
         opt_states := terminal_signature s :: !opt_states))
      .Sched.Explore.stats
  in
  let set l = List.sort_uniq compare l in
  Alcotest.(check bool) "same reachable terminal states" true
    (set !naive = set !opt_states);
  Alcotest.(check int) "each distinct state visited once"
    (List.length (set !naive))
    (List.length !opt_states);
  Alcotest.(check bool)
    (Printf.sprintf ">=5x fewer nodes (%d vs %d)" opt.Sched.Explore.nodes
       raw.Sched.Explore.nodes)
    true
    (5 * opt.Sched.Explore.nodes <= raw.Sched.Explore.nodes)

let test_explore_canonical_crash_order () =
  (* Two 1-step writers, up to 2 crashes. Canonical (increasing-pid) crash
     order enumerates: 2 crash-free schedules, 2+2 single-crash schedules,
     and exactly ONE double-crash schedule (crash 0 then crash 1) — the
     pid-swapped duplicate is gone. *)
  let init () =
    S.start ~memory:(make_memory ())
      ~programs:(fun pid ->
        let* () = P.write (pid + 1) in
        P.return ())
      ()
  in
  let raw =
    (Sched.Explore.explore ~max_crashes:2 ~dedup:false ~por:false ~init
       (fun _ -> ()))
      .Sched.Explore.stats
  in
  Alcotest.(check int) "7 canonical schedules" 7 raw.Sched.Explore.terminals;
  let states = ref [] in
  let opt =
    (Sched.Explore.explore ~max_crashes:2 ~init (fun s ->
         states := terminal_signature s :: !states))
      .Sched.Explore.stats
  in
  Alcotest.(check int) "4 distinct terminal states" 4
    opt.Sched.Explore.terminals;
  Alcotest.(check int) "all distinct" 4
    (List.length (List.sort_uniq compare !states));
  (* And the naive crash walker agrees with the raw engine. *)
  let naive = ref 0 in
  Sched.Explore.interleavings_with_crashes_naive ~max_crashes:2 ~init
    (fun _ -> incr naive);
  Alcotest.(check int) "naive crash walker canonical too" 7 !naive

(* Budgets: a node-capped run stops with a serializable frontier, and
   resuming from that frontier visits exactly the schedules the budgeted
   run abandoned — chained segments partition the full enumeration. Run
   with dedup/POR off so terminal counts are exact (one per schedule). *)
let test_budget_resume_partitions () =
  let init = writers_3x4_init in
  let full = ref [] in
  let r =
    Sched.Explore.explore ~dedup:false ~por:false ~init (fun s ->
        full := terminal_signature s :: !full)
  in
  Alcotest.(check bool) "unbudgeted run complete" true
    (r.Sched.Explore.outcome = Sched.Explore.Complete);
  Alcotest.(check int) "unbudgeted terminal count" 34650
    (List.length !full);
  let budget = Sched.Budget.make ~max_nodes:5_000 () in
  let segments = ref 0 in
  let collected = ref [] in
  let rec drain resume =
    incr segments;
    let r =
      Sched.Explore.explore ~dedup:false ~por:false ~budget ?resume ~init
        (fun s -> collected := terminal_signature s :: !collected)
    in
    match r.Sched.Explore.outcome with
    | Sched.Explore.Complete -> ()
    | Sched.Explore.Exhausted { frontier; reason } ->
        Alcotest.(check bool) "stopped by the node cap" true
          (reason = Sched.Budget.Node_cap);
        Alcotest.(check bool) "frontier is nonempty" true (frontier <> []);
        (* The checkpoint survives serialization. *)
        (match
           Sched.Budget.frontier_of_string
             (Sched.Budget.frontier_to_string frontier)
         with
        | Ok f -> Alcotest.(check bool) "frontier round-trips" true (f = frontier)
        | Error e -> Alcotest.fail e);
        drain (Some frontier)
  in
  drain None;
  Alcotest.(check bool)
    (Printf.sprintf "budget forced several segments (%d)" !segments)
    true (!segments > 1);
  Alcotest.(check int) "segments partition the terminal count" 34650
    (List.length !collected);
  Alcotest.(check bool) "same multiset of terminal states" true
    (List.sort compare !full = List.sort compare !collected)

let test_budget_terminal_cap () =
  let r =
    Sched.Explore.explore ~dedup:false ~por:false
      ~budget:(Sched.Budget.make ~max_terminals:100 ())
      ~init:writers_3x4_init
      (fun _ -> ())
  in
  Alcotest.(check int) "visited exactly the cap" 100
    r.Sched.Explore.stats.Sched.Explore.terminals;
  match r.Sched.Explore.outcome with
  | Sched.Explore.Exhausted { reason = Sched.Budget.Terminal_cap; frontier }
    ->
      Alcotest.(check bool) "rest of the tree on the frontier" true
        (frontier <> [])
  | _ -> Alcotest.fail "expected terminal-cap exhaustion"

let test_budget_deadline_fake_clock () =
  (* A deterministic clock that advances 10ms per read: the 0.5s deadline
     trips after ~50 reads (the monitor samples it every 64th poll), long
     before the raw 3x4 tree is done. *)
  let now = ref 0. in
  let clock () =
    now := !now +. 0.01;
    !now
  in
  let r =
    Sched.Explore.explore ~dedup:false ~por:false
      ~budget:(Sched.Budget.make ~deadline:0.5 ())
      ~clock ~init:writers_3x4_init
      (fun _ -> ())
  in
  match r.Sched.Explore.outcome with
  | Sched.Explore.Exhausted { reason = Sched.Budget.Deadline; frontier } ->
      Alcotest.(check bool) "frontier is nonempty" true (frontier <> [])
  | _ -> Alcotest.fail "expected deadline exhaustion"

let test_visited_cap_degrades_not_stops () =
  (* Capping the dedup table weakens memoization but must not change the
     reachable terminal-state set or the completeness of the run. *)
  let init = writers_3x4_init in
  let states budget =
    let acc = ref [] in
    let r =
      Sched.Explore.explore ~budget ~init (fun s ->
          acc := terminal_signature s :: !acc)
    in
    Alcotest.(check bool) "complete despite the visited cap" true
      (r.Sched.Explore.outcome = Sched.Explore.Complete);
    (List.sort_uniq compare !acc, r.Sched.Explore.stats)
  in
  let full_set, full = states Sched.Budget.unlimited in
  let capped_set, capped =
    states (Sched.Budget.make ~max_visited:10 ())
  in
  Alcotest.(check bool) "same terminal-state set" true
    (full_set = capped_set);
  Alcotest.(check bool) "weaker dedup explores at least as many nodes" true
    (capped.Sched.Explore.nodes >= full.Sched.Explore.nodes)

let test_frontier_of_string_rejects_garbage () =
  (match Sched.Budget.frontier_of_string "s0 x1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad token accepted");
  (match Sched.Budget.frontier_of_string "s0 c\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing pid accepted");
  (* The empty path (budget tripped at the root) round-trips. *)
  match
    Sched.Budget.frontier_of_string (Sched.Budget.frontier_to_string [ [] ])
  with
  | Ok [ [] ] -> ()
  | Ok _ -> Alcotest.fail "empty path did not round-trip"
  | Error e -> Alcotest.fail e

(* Domain-parallel exploration (Sched.Par). Tiny seed segments
   ([seed_nodes]) force the frontier fan-out even on these small trees;
   the visitor folds are pure (per-unit accumulators, list merge), as the
   pool requires. *)

let writers_init ~n ~len () =
  let straight len : (int, string, unit) P.t =
    let rec go k =
      if k = 0 then P.return ()
      else
        let* () = P.write k in
        go (k - 1)
    in
    go len
  in
  S.start ~memory:(make_memory ~n ()) ~programs:(fun _ -> straight len) ()

let collect_fold s acc = terminal_signature s :: acc

let test_par_differential_sets () =
  let init = writers_3x4_init in
  let naive = ref [] in
  Sched.Explore.interleavings_naive ~init (fun s ->
      naive := terminal_signature s :: !naive);
  let seq = ref [] in
  ignore
    (Sched.Explore.explore ~init (fun s ->
         seq := terminal_signature s :: !seq));
  let par =
    Sched.Par.explore ~jobs:4 ~seed_nodes:16 ~init ~fold:collect_fold
      ~merge:( @ ) []
  in
  let set l = List.sort_uniq compare l in
  Alcotest.(check bool) "went parallel" true (par.Sched.Par.units > 0);
  Alcotest.(check bool) "complete" true
    (par.Sched.Par.outcome = Sched.Explore.Complete);
  Alcotest.(check bool) "parallel set = sequential set" true
    (set par.Sched.Par.value = set !seq);
  Alcotest.(check bool) "parallel set = naive set" true
    (set par.Sched.Par.value = set !naive)

let test_par_differential_crashes () =
  (* 3 writers x 2 steps, up to 1 crash: small enough for the naive crash
     walker, branchy enough to split across units. *)
  let init = writers_init ~n:3 ~len:2 in
  let naive = ref [] in
  Sched.Explore.interleavings_with_crashes_naive ~max_crashes:1 ~init
    (fun s -> naive := terminal_signature s :: !naive);
  let seq = ref [] in
  ignore
    (Sched.Explore.explore ~max_crashes:1 ~init (fun s ->
         seq := terminal_signature s :: !seq));
  let par =
    Sched.Par.explore ~max_crashes:1 ~jobs:4 ~seed_nodes:8 ~init
      ~fold:collect_fold ~merge:( @ ) []
  in
  let set l = List.sort_uniq compare l in
  Alcotest.(check bool) "went parallel" true (par.Sched.Par.units > 0);
  Alcotest.(check bool) "parallel set = sequential set" true
    (set par.Sched.Par.value = set !seq);
  Alcotest.(check bool) "parallel set = naive set" true
    (set par.Sched.Par.value = set !naive)

let test_par_raw_partition_exact () =
  (* Reductions off: the frontier partitions the raw tree, so the merged
     stats record equals the sequential one field-for-field — nodes,
     terminals, peak depth, all of it. *)
  let init = writers_3x4_init in
  let seq =
    Sched.Explore.explore ~dedup:false ~por:false ~init (fun _ -> ())
  in
  let par =
    Sched.Par.explore ~dedup:false ~por:false ~jobs:3 ~seed_nodes:64 ~init
      ~fold:(fun _ k -> k + 1)
      ~merge:( + ) 0
  in
  Alcotest.(check bool) "went parallel" true (par.Sched.Par.units > 0);
  Alcotest.(check int) "exactly the naive schedule count" 34650
    par.Sched.Par.value;
  Alcotest.(check bool) "complete" true
    (par.Sched.Par.outcome = Sched.Explore.Complete);
  Alcotest.(check bool) "stats partition exactly" true
    (par.Sched.Par.stats = seq.Sched.Explore.stats)

let test_par_budget_resume () =
  (* A node-capped parallel run exhausts with a merged frontier; draining
     it through Par.explore again partitions the enumeration, exactly as
     the sequential resume loop does. *)
  let init = writers_3x4_init in
  let full = ref [] in
  ignore
    (Sched.Explore.explore ~dedup:false ~por:false ~init (fun s ->
         full := terminal_signature s :: !full));
  let collected = ref [] in
  let segments = ref 0 in
  let rec drain resume =
    incr segments;
    if !segments > 64 then Alcotest.fail "resume loop did not converge";
    let r =
      Sched.Par.explore ~dedup:false ~por:false ~jobs:2 ~seed_nodes:64
        ~budget:(Sched.Budget.make ~max_nodes:4_000 ())
        ?resume ~init ~fold:collect_fold ~merge:( @ ) []
    in
    collected := r.Sched.Par.value @ !collected;
    match r.Sched.Par.outcome with
    | Sched.Explore.Complete -> ()
    | Sched.Explore.Exhausted { frontier; reason = _ } ->
        Alcotest.(check bool) "frontier nonempty" true (frontier <> []);
        drain (Some frontier)
  in
  drain None;
  Alcotest.(check bool)
    (Printf.sprintf "budget forced several segments (%d)" !segments)
    true (!segments > 1);
  Alcotest.(check int) "segments partition the terminal count" 34650
    (List.length !collected);
  Alcotest.(check bool) "same multiset of terminal states" true
    (List.sort compare !full = List.sort compare !collected)

(* Double-collect snapshots: under concurrent writers, a returned snapshot
   was instantaneously present in memory. We check the weaker testable
   property: two sequential snapshots by the same process are ordered by
   containment-in-time (each register's value only moves forward). *)
let test_snapshot_clean () =
  let writer ~me : (int, string, unit) P.t =
    let rec go k =
      if k = 0 then P.return ()
      else
        let* () = P.write ((10 * (me + 1)) + k) in
        go (k - 1)
    in
    go 3
  in
  let scanner : (int, string, int array * int array) P.t =
    let* s1 = Sched.Snapshots.double_collect ~n:3 ~equal:Int.equal in
    let* s2 = Sched.Snapshots.double_collect ~n:3 ~equal:Int.equal in
    P.return (s1, s2)
  in
  for seed = 0 to 49 do
    let memory = make_memory ~n:3 () in
    let s =
      S.start ~memory
        ~programs:(fun pid ->
          if pid = 2 then P.map (fun v -> `Scan v) scanner
          else P.map (fun () -> `Done) (writer ~me:pid))
        ()
    in
    S.run_random (Bits.Rng.make seed) s;
    match (S.decisions s).(2) with
    | Some (`Scan (s1, s2)) ->
        (* Writers only count down; each register value in s2 must not be
           older than in s1 (values increase... writers write decreasing k,
           so later values are smaller within a writer). Check stability:
           the zero registers can only change to non-zero. *)
        Array.iteri
          (fun j v1 ->
            if v1 <> 0 && s2.(j) = 0 then
              Alcotest.failf "seed %d: register %d went backwards" seed j)
          s1
    | _ -> Alcotest.fail "scanner undecided"
  done

(* Adversarial schedulers. *)

let test_adversary_lockstep_alg1 () =
  (* Lockstep forces Algorithm 1 through all k iterations: exactly 2k+3
     steps per process. *)
  List.iter
    (fun k ->
      let algorithm = Core.Alg1_one_bit.algorithm ~k in
      let s =
        S.start
          ~memory:(algorithm.Tasks.Harness.memory ())
          ~programs:(fun pid ->
            algorithm.Tasks.Harness.program ~pid ~input:pid)
          ()
      in
      Sched.Adversary.run Sched.Adversary.lockstep s;
      Alcotest.(check int)
        (Printf.sprintf "p0 steps (k=%d)" k)
        ((2 * k) + 3) (S.steps_of s 0);
      Alcotest.(check int)
        (Printf.sprintf "p1 steps (k=%d)" k)
        ((2 * k) + 3) (S.steps_of s 1))
    [ 1; 3; 6 ]

let test_adversary_solo_then () =
  (* Solo-then: process 0 decides before process 1 takes any step. *)
  let algorithm = Core.Alg1_one_bit.algorithm ~k:3 in
  let s =
    S.start
      ~memory:(algorithm.Tasks.Harness.memory ())
      ~programs:(fun pid -> algorithm.Tasks.Harness.program ~pid ~input:pid)
      ()
  in
  let p1_steps_at_p0_decision = ref (-1) in
  let adversary view =
    (match S.status s 0 with
    | S.Decided _ when !p1_steps_at_p0_decision < 0 ->
        p1_steps_at_p0_decision := view.Sched.Adversary.steps_of 1
    | _ -> ());
    Sched.Adversary.solo_then ~first:0 view
  in
  Sched.Adversary.run adversary s;
  Alcotest.(check int) "p1 had taken no steps" 0 !p1_steps_at_p0_decision;
  match (S.decisions s).(0) with
  | Some d ->
      Alcotest.(check bool) "solo p0 decides its input 0" true
        (Bits.Rational.equal d Bits.Rational.zero)
  | None -> Alcotest.fail "p0 undecided"

let test_adversary_rejects_bad_pick () =
  let s = start () in
  Alcotest.check_raises "picking halted process raises"
    (Invalid_argument "Adversary.run: pid 7 is not running") (fun () ->
      Sched.Adversary.run (fun _ -> 7) s)

(* {2 Compiled programs: dedup hashing, journal arena, code sharing} *)

let untracked_memory n =
  M.create ~n ~budget:Bits.Width.Unbounded ~measure:Bits.Width.unbounded
    ~init:0

let signature st =
  ( Array.to_list (S.decisions st),
    Array.to_list (M.contents (S.memory st)),
    S.crashed st )

(* The dedup key used to be [Hashtbl.hash] over the per-process
   observation histories. The default hash inspects at most 10
   meaningful nodes, so histories deeper than a handful of cells all
   collide — and a hash-keyed visited set then merges distinct states
   silently. The explorer now folds every cell into a Zobrist hash, with
   [Zobrist.value_hash] ([Hashtbl.hash_param 256 256]) for cell values;
   this pins the difference at the value level. *)
let test_zobrist_beats_hash_truncation () =
  let deep tail = [ 9; 9; 9; 9; 9; 9; 9; 9; 9; 9; 9; tail ] in
  let h1 = deep 1 and h2 = deep 2 in
  Alcotest.(check bool) "histories differ" false (h1 = h2);
  Alcotest.(check int) "Hashtbl.hash truncates: deep histories collide"
    (Hashtbl.hash h1) (Hashtbl.hash h2);
  Alcotest.(check bool) "Zobrist value hash sees past the 10th node" false
    (Sched.Zobrist.value_hash h1 = Sched.Zobrist.value_hash h2)

(* End to end: proc 0's observation history is 12 cells deep, so a
   10-node-truncated hash of the combined histories never reaches the
   cell where proc 1 recorded its read — under the old key, all 13
   distinct terminal states (one per snapshot proc 1 can observe) hash
   alike. The deduped engine must still report exactly the raw terminal
   set. *)
let test_dedup_distinguishes_deep_histories () =
  let writer =
    let rec go k =
      if k > 12 then P.Return (-1) else P.Write (k, fun () -> go (k + 1))
    in
    go 1
  in
  let reader = P.Read (0, fun v -> P.Return v) in
  let init () =
    S.start ~memory:(untracked_memory 2)
      ~programs:(fun pid -> if pid = 0 then writer else reader)
      ()
  in
  let raw = ref [] in
  ignore
    (Sched.Explore.explore ~dedup:false ~por:false ~init (fun st ->
         raw := signature st :: !raw)
      : Sched.Explore.result);
  let opt = ref [] in
  ignore
    (Sched.Explore.explore ~init (fun st -> opt := signature st :: !opt)
      : Sched.Explore.result);
  let set l = List.sort_uniq compare l in
  Alcotest.(check int) "reader observes 13 distinct snapshots" 13
    (List.length (set !raw));
  Alcotest.(check bool) "dedup+por terminal set = raw" true
    (set !opt = set !raw)

(* The journal's flat columns start at 256 slots; a path longer than that
   exercises [grow_journal] mid-path, and [undo_to] back to the root must
   still restore program, memory and statistics exactly. *)
let test_journal_grows_and_rewinds () =
  let n_writes = 600 in
  let prog =
    let rec go k =
      if k = 0 then P.Return () else P.Write (k, fun () -> go (k - 1))
    in
    go n_writes
  in
  let s = S.start ~memory:(make_memory ~n:1 ()) ~programs:(fun _ -> prog) () in
  S.enable_journal s;
  let mark = S.journal_mark s in
  while S.status s 0 = S.Running do
    S.step s 0
  done;
  Alcotest.(check int) "all steps taken" n_writes (S.steps_taken s);
  Alcotest.(check int) "register holds the last write" 1
    (M.peek (S.memory s) 0);
  S.undo_to s mark;
  Alcotest.(check int) "steps rewound" 0 (S.steps_taken s);
  Alcotest.(check int) "register restored" 0 (M.peek (S.memory s) 0);
  Alcotest.(check int) "write counter restored" 0
    (M.writes_performed (S.memory s));
  Alcotest.(check int) "max-width statistic restored" 0
    (M.max_bits_written (S.memory s));
  Alcotest.(check bool) "process running again" true (S.status s 0 = S.Running);
  (* the rewound state is live: replaying decides again *)
  while S.status s 0 = S.Running do
    S.step s 0
  done;
  Alcotest.(check bool) "replay decides" true (S.all_output s)

(* One compiled artifact, many runs: [start_compiled] over the same
   [Program.Compiled.code] must explore exactly like compiling afresh,
   and after one full exploration the position memo is complete — later
   runs resolve no new slots. *)
let test_compiled_code_shared_across_runs () =
  let prog pid =
    let other = 1 - pid in
    P.Write (pid + 1, fun () -> P.Read (other, fun v -> P.Return v))
  in
  let codes = Array.init 2 (fun pid -> P.compile (prog pid)) in
  let explore_with init =
    let acc = ref [] in
    let stats =
      (Sched.Explore.explore ~dedup:false ~por:false ~init (fun st ->
           acc := signature st :: !acc))
        .Sched.Explore.stats
    in
    (List.sort compare !acc, stats)
  in
  let fresh () =
    S.start ~memory:(untracked_memory 2) ~programs:prog ()
  in
  let shared () =
    S.start_compiled ~memory:(untracked_memory 2)
      ~programs:(fun pid -> codes.(pid))
      ()
  in
  let sigs_fresh, stats_fresh = explore_with fresh in
  let sigs_shared, stats_shared = explore_with shared in
  Alcotest.(check bool) "shared code, same terminal multiset" true
    (sigs_shared = sigs_fresh);
  Alcotest.(check bool) "shared code, same stats" true
    (stats_shared = stats_fresh);
  let len_after_first = P.Compiled.length codes.(0) + P.Compiled.length codes.(1) in
  let sigs_again, stats_again = explore_with shared in
  Alcotest.(check bool) "second shared run identical" true
    (sigs_again = sigs_fresh && stats_again = stats_fresh);
  Alcotest.(check int) "memo complete: no new slots on reuse" len_after_first
    (P.Compiled.length codes.(0) + P.Compiled.length codes.(1))

(* The fused in-frame walk ([Scheduler.raw_dfs]) and the journaled
   general path must be observationally identical. [record_trace] forces
   the engine off the fused path, so the same protocol run both ways is
   a direct differential — stats field-for-field, terminals as
   multisets, with and without crash branching. *)
let test_fused_equals_journaled () =
  let prog pid =
    let other = 1 - pid in
    P.Write (1, fun () ->
        P.Read (other, fun v ->
            P.Write (v + 2, fun () ->
                P.Read (other, fun w -> P.Return (v, w)))))
  in
  let init ~record_trace () =
    S.start ~record_trace ~memory:(untracked_memory 2) ~programs:prog ()
  in
  List.iter
    (fun max_crashes ->
      let run record_trace =
        let acc = ref [] in
        let stats =
          (Sched.Explore.explore ~max_crashes ~dedup:false ~por:false
             ~init:(init ~record_trace) (fun st ->
               acc := signature st :: !acc))
            .Sched.Explore.stats
        in
        (List.sort compare !acc, stats)
      in
      let sigs_fused, stats_fused = run false in
      let sigs_journaled, stats_journaled = run true in
      let label s = Printf.sprintf "%s (max_crashes=%d)" s max_crashes in
      Alcotest.(check bool)
        (label "fused = journaled terminal multiset")
        true
        (sigs_fused = sigs_journaled);
      Alcotest.(check bool) (label "fused = journaled stats") true
        (stats_fused = stats_journaled))
    [ 0; 1 ]

let () =
  Alcotest.run "sched"
    [
      ( "memory",
        [
          Alcotest.test_case "basics" `Quick test_memory_basics;
          Alcotest.test_case "budget enforced" `Quick test_memory_budget;
          Alcotest.test_case "inputs write-once" `Quick
            test_memory_inputs_write_once;
          Alcotest.test_case "copy independent" `Quick
            test_memory_copy_independent;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "step semantics" `Quick
            test_scheduler_step_semantics;
          Alcotest.test_case "crash" `Quick test_scheduler_crash;
          Alcotest.test_case "trace replay" `Quick test_scheduler_trace_replay;
          Alcotest.test_case "output-and-continue" `Quick
            test_scheduler_output_continue;
        ] );
      ( "explore",
        [
          Alcotest.test_case "interleaving counts" `Quick test_explore_counts;
          Alcotest.test_case "find" `Quick test_explore_find;
          Alcotest.test_case "crash branching" `Quick
            test_explore_crashes_include_solo;
          Alcotest.test_case "undo rollback across crash branches" `Quick
            test_undo_rollback_across_crashes;
          Alcotest.test_case "undo restores overwritten registers" `Quick
            test_undo_rollback_write_over;
          Alcotest.test_case "dedup+POR: >=5x fewer nodes, same states" `Quick
            test_explore_reductions_5x;
          Alcotest.test_case "canonical crash order" `Quick
            test_explore_canonical_crash_order;
        ] );
      ( "budget",
        [
          Alcotest.test_case "resume partitions the enumeration" `Quick
            test_budget_resume_partitions;
          Alcotest.test_case "terminal cap is exact" `Quick
            test_budget_terminal_cap;
          Alcotest.test_case "deadline (deterministic clock)" `Quick
            test_budget_deadline_fake_clock;
          Alcotest.test_case "visited cap degrades, not stops" `Quick
            test_visited_cap_degrades_not_stops;
          Alcotest.test_case "frontier parsing rejects garbage" `Quick
            test_frontier_of_string_rejects_garbage;
        ] );
      ( "par",
        [
          Alcotest.test_case "differential: same terminal set" `Quick
            test_par_differential_sets;
          Alcotest.test_case "differential under crashes" `Quick
            test_par_differential_crashes;
          Alcotest.test_case "raw stats partition exactly" `Quick
            test_par_raw_partition_exact;
          Alcotest.test_case "budget + resume through the pool" `Quick
            test_par_budget_resume;
        ] );
      ( "snapshots",
        [ Alcotest.test_case "double collect" `Quick test_snapshot_clean ] );
      ( "adversary",
        [
          Alcotest.test_case "lockstep forces 2k+3 steps" `Quick
            test_adversary_lockstep_alg1;
          Alcotest.test_case "solo-then" `Quick test_adversary_solo_then;
          Alcotest.test_case "invalid pick rejected" `Quick
            test_adversary_rejects_bad_pick;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "Zobrist hashing beats 10-node truncation"
            `Quick test_zobrist_beats_hash_truncation;
          Alcotest.test_case "dedup distinguishes deep histories" `Quick
            test_dedup_distinguishes_deep_histories;
          Alcotest.test_case "journal arena grows and rewinds" `Quick
            test_journal_grows_and_rewinds;
          Alcotest.test_case "compiled code shared across runs" `Quick
            test_compiled_code_shared_across_runs;
          Alcotest.test_case "fused walk = journaled walk" `Quick
            test_fused_equals_journaled;
        ] );
    ]
