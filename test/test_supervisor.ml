(* Supervisor: crash isolation, wall-clock timeouts, retry-once for
   seeded experiments, and the aggregate exit code. The experiments here
   are synthetic [Registry.t] records — the point is the harness around
   them, not the science inside. *)

module S = Experiments.Supervisor
module R = Experiments.Registry

let entry ?(seeded = false) id run =
  { R.id; slug = "test-" ^ String.lowercase_ascii id; paper = "synthetic";
    seeded; run }

let passing id =
  entry id (fun _ctx ppf -> Format.fprintf ppf "%s ran fine@." id)

let crashing id =
  entry id (fun _ctx _ppf -> failwith (id ^ " exploded"))

(* An infinite loop that allocates, so the SIGALRM handler's exception
   can actually be delivered (OCaml checks for signals at allocation
   points). *)
let hanging id =
  entry id (fun _ctx _ppf ->
      let rec spin xs = spin (ignore (Sys.opaque_identity (List.rev xs)); 0 :: xs) in
      ignore (spin []))

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let test_crash_is_isolated () =
  let results =
    S.run_all ~ppf:null_ppf
      ~experiments:[ passing "T1"; crashing "T2"; passing "T3" ]
      ()
  in
  Alcotest.(check int) "every experiment still ran" 3 (List.length results);
  let r2 = List.nth results 1 in
  (match r2.S.status with
  | S.Crashed { exn_text; backtrace = _ } ->
      Alcotest.(check bool)
        "exception text captured" true
        (let re = "T2 exploded" in
         let len = String.length re in
         let n = String.length exn_text in
         let rec scan i =
           i + len <= n && (String.sub exn_text i len = re || scan (i + 1))
         in
         scan 0)
  | s -> Alcotest.failf "expected Crashed, got %a" S.pp_status s);
  Alcotest.(check bool) "crash fails the run" false (S.status_ok r2.S.status);
  let r3 = List.nth results 2 in
  Alcotest.(check bool) "later experiment unaffected" true
    (S.status_ok r3.S.status);
  Alcotest.(check bool) "later output intact" true
    (r3.S.output <> "");
  Alcotest.(check int) "aggregate exit code is 1" 1 (S.exit_code results)

let test_hang_times_out () =
  let r = S.run_one ~deadline:0.2 (hanging "T-HANG") in
  (match r.S.status with
  | S.Timed_out d ->
      Alcotest.(check bool) "reported deadline" true (d = 0.2)
  | s -> Alcotest.failf "expected Timed_out, got %a" S.pp_status s);
  Alcotest.(check bool) "timeout fails the run" false
    (S.status_ok r.S.status);
  Alcotest.(check int) "timeouts are not retried" 1 r.S.attempts;
  (* The alarm must not leak into the next (well-behaved) run. *)
  let after = S.run_one ~deadline:5.0 (passing "T-AFTER") in
  Alcotest.(check bool) "no leaked alarm" true (S.status_ok after.S.status)

let test_seeded_crash_retried_once () =
  let calls = ref 0 in
  let flaky =
    entry ~seeded:true "T-FLAKY" (fun _ctx ppf ->
        incr calls;
        if !calls = 1 then failwith "unlucky seed"
        else Format.fprintf ppf "second attempt ok@.")
  in
  let r = S.run_one flaky in
  Alcotest.(check int) "ran twice" 2 !calls;
  Alcotest.(check int) "attempts recorded" 2 r.S.attempts;
  Alcotest.(check bool) "flake recovers" true (S.status_ok r.S.status)

let test_unseeded_crash_not_retried () =
  let calls = ref 0 in
  let brittle =
    entry "T-BRITTLE" (fun _ctx _ppf ->
        incr calls;
        failwith "deterministic crash")
  in
  let r = S.run_one brittle in
  Alcotest.(check int) "ran once" 1 !calls;
  Alcotest.(check int) "single attempt" 1 r.S.attempts;
  Alcotest.(check bool) "still a failure" false (S.status_ok r.S.status)

let test_seeded_double_crash_reports_first () =
  let doomed =
    entry ~seeded:true "T-DOOMED" (fun _ctx _ppf -> failwith "always")
  in
  let r = S.run_one doomed in
  Alcotest.(check int) "both attempts spent" 2 r.S.attempts;
  Alcotest.(check bool) "failure survives retry" false
    (S.status_ok r.S.status)

let test_degraded_is_still_ok () =
  let degrading =
    entry "T-DEGRADE" (fun ctx ppf ->
        ctx.Experiments.Ctx.degraded "fell back to sampling";
        Format.fprintf ppf "partial coverage@.")
  in
  let r = S.run_one degrading in
  (match r.S.status with
  | S.Degraded [ note ] ->
      Alcotest.(check string) "note captured" "fell back to sampling" note
  | s -> Alcotest.failf "expected Degraded, got %a" S.pp_status s);
  Alcotest.(check bool) "degraded still passes" true (S.status_ok r.S.status);
  Alcotest.(check int) "all-pass exit code" 0
    (S.exit_code [ r; S.run_one (passing "T-OK") ])

let test_jobs_threads_through_context () =
  let seen = ref 0 in
  let probe =
    entry "T-JOBS" (fun ctx ppf ->
        seen := ctx.Experiments.Ctx.jobs;
        Format.fprintf ppf "pool width %d@." ctx.Experiments.Ctx.jobs)
  in
  let r = S.run_one ~jobs:3 probe in
  Alcotest.(check bool) "probe passed" true (S.status_ok r.S.status);
  Alcotest.(check int) "experiment saw the pool width" 3 !seen;
  ignore (S.run_one probe);
  Alcotest.(check int) "default is sequential" 1 !seen

let test_summary_names_failures () =
  let results =
    S.run_all ~ppf:null_ppf
      ~experiments:[ passing "T1"; crashing "T2" ]
      ()
  in
  let text = Format.asprintf "%a" S.summary results in
  let contains hay needle =
    let len = String.length needle and n = String.length hay in
    let rec scan i =
      i + len <= n && (String.sub hay i len = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "summary lists the failed id" true
    (contains text "T2");
  Alcotest.(check bool) "summary says FAILED" true (contains text "FAILED")

let () =
  Alcotest.run "supervisor"
    [
      ( "supervisor",
        [
          Alcotest.test_case "crash isolation" `Quick test_crash_is_isolated;
          Alcotest.test_case "hang times out" `Quick test_hang_times_out;
          Alcotest.test_case "seeded crash retried" `Quick
            test_seeded_crash_retried_once;
          Alcotest.test_case "unseeded crash not retried" `Quick
            test_unseeded_crash_not_retried;
          Alcotest.test_case "double crash reports failure" `Quick
            test_seeded_double_crash_reports_first;
          Alcotest.test_case "degraded still passes" `Quick
            test_degraded_is_still_ok;
          Alcotest.test_case "jobs threads through the context" `Quick
            test_jobs_threads_through_context;
          Alcotest.test_case "summary names failures" `Quick
            test_summary_names_failures;
        ] );
    ]
