#!/usr/bin/env python3
"""Performance gate for the fused exploration hot path.

Compares a freshly measured bench JSON against the committed baseline
(BENCH_PR6.json) and fails if the raw exploration benchmark has
regressed past the tolerance. CI runners are noisy and heterogeneous, so
the gate is deliberately loose (1.5x by default): it catches "someone
re-introduced per-edge allocation or journal traffic", not 5% drift.

Also cross-checks, within the fresh run, that the parallel explorer's
terminal digests are identical at every measured pool width — the
determinism claim the bench records.

Usage: bench_gate.py BASELINE.json FRESH.json [--key NAME] [--factor F]
Exit status: 0 pass, 1 regression or malformed input.
"""

import argparse
import json
import sys

DEFAULT_KEY = "bounded-registers/explore-3x4(raw-undo)"


def ns_per_call(doc, key):
    for row in doc.get("benchmarks", []):
        if row.get("name") == key:
            return float(row["ns_per_call"])
    raise KeyError(f"benchmark row {key!r} not found")


def check_digests(doc):
    rows = doc.get("parallel", {}).get("explore_raw_3x4", [])
    digests = {row["jobs"]: row["digest"] for row in rows}
    if len(set(digests.values())) > 1:
        return f"parallel digests differ across pool widths: {digests}"
    return None


def check_fleet(doc):
    """Dead-mutator guard: the fleet smoke recorded in the fresh bench run
    must attribute at least one new coverage signal to a mutated (or
    crossed-over) corpus plan. Fresh seeded runs finding coverage while
    mutants find none means the mutation engine has silently died — the
    corpus would still grow, witnesses might still appear, and nothing
    else would notice."""
    fleet = doc.get("fleet", {}).get("frontier_g150")
    if fleet is None:
        return "fleet section missing from fresh bench JSON"
    if fleet.get("new_signals", 0) <= 0:
        return "fleet smoke found zero new coverage signals on the seed corpus"
    if fleet.get("mutant_new_signals", 0) <= 0:
        return (
            "dead mutator: fleet smoke attributed zero new coverage signals "
            "to mutated corpus plans"
        )
    return None


RECORDER_OFF_KEY = "bounded-registers/explore-3x4(raw-undo,recorder-off)"
RECORDER_FACTOR = 1.06


def check_recorder(doc):
    """Recorder-overhead guard: the always-on flight recorder must stay
    cheap on the raw exploration hot path. Both rows come from the same
    fresh run (each with its own warmup, in seeded-shuffle order), but
    repeated runs on one machine still show the on/off ratio wobbling
    by ~±3% on this ~2.5 ms row, so the limit is 6%: loose enough not
    to flap on scheduler noise, tight enough to catch a recorder that
    starts allocating or copying per node (an order of magnitude above
    the limit)."""
    try:
        on_ns = ns_per_call(doc, DEFAULT_KEY)
        off_ns = ns_per_call(doc, RECORDER_OFF_KEY)
    except KeyError as e:
        return f"recorder check: {e}"
    limit = RECORDER_FACTOR * off_ns
    if on_ns > limit:
        return (
            f"flight recorder overhead too high: on {on_ns:.2f} ns/call vs "
            f"off {off_ns:.2f} ns/call (limit {limit:.2f}, "
            f"{RECORDER_FACTOR}x)"
        )
    return None


CHAOS_RUN_KEY = "bounded-registers/chaos-run(sound,n=4)"
FLEET_RUNS_PER_SEC_FLOOR = 10_000
CHAOS_MINOR_WORDS_CEILING = 900.0


def minor_words_per_call(doc, key):
    for row in doc.get("benchmarks", []):
        if row.get("name") == key:
            return float(row["minor_words_per_call"])
    raise KeyError(f"benchmark row {key!r} not found")


def check_msgpass(doc):
    """Message-passing hot-path gate. Three claims from the pooled-network
    rework must keep holding:

    - fleet throughput: the 150-generation frontier fleet must sustain a
      runs/sec floor. The pooled arenas put the post-rework number at
      5x+ the old allocate-per-run figure (~4,950), so a 10k floor is
      CI-noise-safe while still catching a return to per-run network
      construction.
    - chaos allocation: one sound chaos run must stay under a minor-words
      ceiling. Pre-rework it allocated ~8,580 minor words per run; the
      pooled network and trail-undo linearizer brought that under ~700,
      so a 900 ceiling flags any reintroduced per-message or per-check
      allocation while tolerating GC-counter jitter. Allocation counts
      are deterministic-ish, unlike wall-clock, hence a hard ceiling
      rather than a baseline ratio.
    - run-cache liveness: the resumed fleet leg (a campaign over a
      corpus a previous campaign filled) must answer at least one probe
      from the content-addressed run cache (and must be counting probes
      at all). A fresh in-memory campaign legitimately records zero
      hits — duplicate-class shrinks are skipped, so nothing replays
      known content — which is why the guard reads the resume row:
      there, every corpus plan's outcome is pre-filled, and zero hits
      means content addressing silently died."""
    fleet = doc.get("fleet", {}).get("frontier_g150")
    if fleet is None:
        return "fleet section missing from fresh bench JSON"
    rps = fleet.get("runs_per_sec", 0)
    if rps < FLEET_RUNS_PER_SEC_FLOOR:
        return (
            f"fleet throughput below floor: {rps} runs/sec "
            f"(floor {FLEET_RUNS_PER_SEC_FLOOR})"
        )
    try:
        mw = minor_words_per_call(doc, CHAOS_RUN_KEY)
    except KeyError as e:
        return f"msgpass check: {e}"
    if mw > CHAOS_MINOR_WORDS_CEILING:
        return (
            f"chaos run allocates too much: {mw:.2f} minor words/call "
            f"(ceiling {CHAOS_MINOR_WORDS_CEILING})"
        )
    resume = doc.get("fleet", {}).get("resume_g20")
    if resume is None:
        return "fleet resume leg missing from fresh bench JSON"
    if resume.get("cache_lookups", 0) <= 0:
        return "fleet run cache recorded zero lookups — cache not wired in"
    if resume.get("cache_hits", 0) <= 0:
        return (
            "fleet run cache recorded zero hits over "
            f"{resume['cache_lookups']} resumed lookups — "
            "content addressing is dead"
        )
    return None


def check_churn(doc):
    """Churn gate: the dynamic-membership rows must show the sound churn
    campaign (slack covers the rate) staying linearizable on every seeded
    run, and the churn-frontier preset still finding and shrinking its
    pinned stale-read counterexample. A sound violation means the
    slack-widened quorum intersection regressed; a missing frontier
    violation means the churn adversary (or the checker's view of it)
    silently lost its teeth."""
    churn = doc.get("churn")
    if churn is None:
        return "churn section missing from fresh bench JSON"
    sound = churn.get("sound", {})
    if sound.get("violations", -1) != 0:
        return (
            "sound churn campaign reported violations "
            f"(expected 0): {sound}"
        )
    frontier = churn.get("frontier", {})
    if frontier.get("violations", 0) < 1:
        return "churn-frontier pinned seed produced no violation"
    if frontier.get("shrunk_events", 0) <= 0:
        return "churn-frontier witness did not shrink to a replayable plan"
    if frontier.get("shrunk_churn_actions", 0) <= 0:
        return (
            "churn-frontier shrunk plan retains no enter/leave action — "
            "the violation no longer depends on membership churn"
        )
    return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--key", default=DEFAULT_KEY)
    ap.add_argument("--factor", type=float, default=1.5)
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    try:
        base_ns = ns_per_call(baseline, args.key)
        fresh_ns = ns_per_call(fresh, args.key)
    except KeyError as e:
        print(f"bench gate: {e}", file=sys.stderr)
        return 1

    limit = args.factor * base_ns
    verdict = "OK" if fresh_ns <= limit else "REGRESSION"
    print(
        f"bench gate: {args.key}\n"
        f"  baseline {base_ns:12.2f} ns/call\n"
        f"  fresh    {fresh_ns:12.2f} ns/call\n"
        f"  limit    {limit:12.2f} ns/call ({args.factor}x)  -> {verdict}"
    )
    failed = fresh_ns > limit

    digest_err = check_digests(fresh)
    if digest_err:
        print(f"bench gate: {digest_err}", file=sys.stderr)
        failed = True
    else:
        print("bench gate: parallel digests identical at all pool widths")

    fleet_err = check_fleet(fresh)
    if fleet_err:
        print(f"bench gate: {fleet_err}", file=sys.stderr)
        failed = True
    else:
        print("bench gate: fleet mutator is alive (mutant coverage signals > 0)")

    recorder_err = check_recorder(fresh)
    if recorder_err:
        print(f"bench gate: {recorder_err}", file=sys.stderr)
        failed = True
    else:
        print("bench gate: flight recorder overhead within 6% on raw explore")

    msgpass_err = check_msgpass(fresh)
    if msgpass_err:
        print(f"bench gate: {msgpass_err}", file=sys.stderr)
        failed = True
    else:
        print(
            "bench gate: msgpass hot path holds (fleet runs/sec floor, "
            "chaos minor-words ceiling, run cache alive)"
        )

    churn_err = check_churn(fresh)
    if churn_err:
        print(f"bench gate: {churn_err}", file=sys.stderr)
        failed = True
    else:
        print(
            "bench gate: churn rows sound (0 sound violations, "
            "frontier witness shrinks with churn actions)"
        )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
