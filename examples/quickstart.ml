(* Quickstart: epsilon-agreement between two processes over 1-bit registers
   (Algorithm 1 of the paper, Theorem 1.2).

   Run with: dune exec examples/quickstart.exe *)

module Q = Bits.Rational
module H = Tasks.Harness
module Scheduler = Sched.Scheduler

let () =
  let k = 4 in
  let den = Core.Alg1_one_bit.denominator ~k in
  Printf.printf "Algorithm 1 with k = %d: epsilon = 1/%d, 1-bit registers\n\n"
    k den;

  (* One concrete execution with a recorded trace (compare Figure 2). *)
  let algorithm = Core.Alg1_one_bit.algorithm ~k in
  let memory = algorithm.H.memory () in
  let state =
    Scheduler.start ~record_trace:true ~memory
      ~programs:(fun pid -> algorithm.H.program ~pid ~input:pid)
      ()
  in
  Scheduler.run_random (Bits.Rng.make 2024) state;
  Printf.printf "One execution with inputs (0, 1):\n";
  Format.printf "%a@\n@\n" (Sched.Trace.pp Format.pp_print_int)
    (Scheduler.trace state);
  Array.iteri
    (fun pid d ->
      match d with
      | Some v -> Format.printf "  process %d decides %a@\n" pid Q.pp v
      | None -> Format.printf "  process %d crashed@\n" pid)
    (Scheduler.decisions state);

  (* Exhaustive verification over every interleaving and crash placement. *)
  let task = Tasks.Eps_agreement.task ~n:2 ~k:den in
  Format.printf "@\nExhaustive check (all interleavings, <=1 crash): %a@\n"
    (H.pp_report Format.pp_print_int)
    (H.check_exhaustive ~task ~algorithm ~max_crashes:1 ());

  (* All decision pairs reachable with inputs (0, 1): the chromatic path. *)
  Printf.printf "\nDecision pairs over all executions with inputs (0, 1):\n";
  let pairs = ref [] in
  let (_ : Sched.Explore.outcome) =
    Sched.Explore.interleavings
      ~init:(fun () ->
        Scheduler.start
          ~memory:(algorithm.H.memory ())
          ~programs:(fun pid -> algorithm.H.program ~pid ~input:pid)
          ())
      (fun st ->
        match ((Scheduler.decisions st).(0), (Scheduler.decisions st).(1)) with
        | Some a, Some b ->
            if
              not (List.exists (fun (x, y) -> Q.equal x a && Q.equal y b) !pairs)
            then pairs := (a, b) :: !pairs
        | _ -> ())
  in
  List.sort (fun (a, _) (b, _) -> Q.compare a b) !pairs
  |> List.iter (fun (a, b) -> Format.printf "  (%a, %a)@\n" Q.pp a Q.pp b)
